package syndrome

import (
	"math/rand"
	"sync"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// ringGraph returns C_n, enough structure for syndrome tests.
func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// k4 returns the complete graph on 4 nodes (degree 3, so testers have
// three distinct pairs).
func k4() *graph.Graph {
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.MustAddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func TestHealthyTesterTruth(t *testing.T) {
	f := bitset.FromMembers(4, []int32{2})
	s := NewLazy(f, AllZero{})
	// 0 is healthy; 1 and 3 healthy => 0; pair containing 2 => 1.
	if got := s.Test(0, 1, 3); got != 0 {
		t.Fatalf("s_0(1,3) = %d, want 0", got)
	}
	if got := s.Test(0, 1, 2); got != 1 {
		t.Fatalf("s_0(1,2) = %d, want 1", got)
	}
	if got := s.Test(0, 2, 3); got != 1 {
		t.Fatalf("s_0(2,3) = %d, want 1", got)
	}
}

func TestTestSymmetry(t *testing.T) {
	f := bitset.FromMembers(4, []int32{1, 2})
	for _, b := range AllBehaviors(7) {
		s := NewLazy(f, b)
		if s.Test(1, 0, 3) != s.Test(1, 3, 0) {
			t.Fatalf("behaviour %s: result not symmetric in (v,w)", b.Name())
		}
		if s.Test(2, 0, 3) != s.Test(2, 3, 0) {
			t.Fatalf("behaviour %s: faulty tester result not symmetric", b.Name())
		}
	}
}

func TestFaultyTesterBehaviours(t *testing.T) {
	f := bitset.FromMembers(4, []int32{0}) // tester 0 is faulty
	if got := NewLazy(f, AllZero{}).Test(0, 1, 2); got != 0 {
		t.Fatalf("all-zero: got %d", got)
	}
	if got := NewLazy(f, AllOne{}).Test(0, 1, 2); got != 1 {
		t.Fatalf("all-one: got %d", got)
	}
	// Mimic: truth for healthy 1,2 is 0.
	if got := NewLazy(f, Mimic{}).Test(0, 1, 2); got != 0 {
		t.Fatalf("mimic: got %d", got)
	}
	// Inverted flips the truth.
	if got := NewLazy(f, Inverted{}).Test(0, 1, 2); got != 1 {
		t.Fatalf("inverted: got %d", got)
	}
}

func TestRandomBehaviourDeterministic(t *testing.T) {
	f := bitset.FromMembers(8, []int32{3})
	a := NewLazy(f, Random{Seed: 99})
	b := NewLazy(f, Random{Seed: 99})
	for i := 0; i < 50; i++ {
		u, v, w := int32(3), int32(i%8), int32((i+1)%8)
		if v == u || w == u || v == w {
			continue
		}
		if a.Test(u, v, w) != b.Test(u, v, w) {
			t.Fatal("random behaviour not deterministic across instances")
		}
		if a.Test(u, v, w) != a.Test(u, v, w) {
			t.Fatal("random behaviour not stable across reads")
		}
	}
}

func TestLookupCounting(t *testing.T) {
	f := bitset.New(4)
	s := NewLazy(f, nil)
	if s.Lookups() != 0 {
		t.Fatal("fresh syndrome has lookups")
	}
	s.Test(0, 1, 2)
	s.Test(0, 1, 3)
	if s.Lookups() != 2 {
		t.Fatalf("lookups = %d, want 2", s.Lookups())
	}
	s.ResetLookups()
	if s.Lookups() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTableSizeAndForEach(t *testing.T) {
	g := k4() // 4 nodes of degree 3: 4 * C(3,2) = 12 tests
	if ts := TableSize(g); ts != 12 {
		t.Fatalf("TableSize = %d, want 12", ts)
	}
	count := 0
	ForEachTest(g, func(u, v, w int32) bool {
		if v >= w {
			t.Fatalf("pair not canonical: %d,%d", v, w)
		}
		count++
		return true
	})
	if count != 12 {
		t.Fatalf("enumerated %d tests, want 12", count)
	}
	// Early stop.
	count = 0
	ForEachTest(g, func(u, v, w int32) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop enumerated %d", count)
	}
}

func TestTableMatchesLazy(t *testing.T) {
	g := ringGraph(16)
	rng := rand.New(rand.NewSource(5))
	f := RandomFaults(16, 3, rng)
	for _, b := range AllBehaviors(11) {
		lazy := NewLazy(f, b)
		tab := BuildTable(g, lazy)
		if tab.Entries() != TableSize(g) {
			t.Fatalf("entries = %d, want %d", tab.Entries(), TableSize(g))
		}
		ForEachTest(g, func(u, v, w int32) bool {
			if tab.Test(u, v, w) != lazy.Test(u, v, w) {
				t.Fatalf("behaviour %s: table disagrees at s_%d(%d,%d)", b.Name(), u, v, w)
			}
			// Symmetric consultation must agree too.
			if tab.Test(u, w, v) != tab.Test(u, v, w) {
				t.Fatalf("table not symmetric at s_%d(%d,%d)", u, v, w)
			}
			return true
		})
	}
}

func TestTableLookupCounting(t *testing.T) {
	g := ringGraph(8)
	tab := BuildTable(g, NewLazy(bitset.New(8), nil))
	tab.ResetLookups()
	tab.Test(0, 1, 7)
	tab.Test(3, 2, 4)
	if tab.Lookups() != 2 {
		t.Fatalf("table lookups = %d, want 2", tab.Lookups())
	}
}

func TestTablePanicsOnNonNeighbor(t *testing.T) {
	g := ringGraph(8)
	tab := BuildTable(g, NewLazy(bitset.New(8), nil))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-neighbour test argument")
		}
	}()
	tab.Test(0, 3, 1) // 3 is not adjacent to 0 in C8
}

func TestConsistent(t *testing.T) {
	g := ringGraph(10)
	f := bitset.FromMembers(10, []int32{4})
	s := NewLazy(f, AllZero{})
	if !Consistent(g, s, f) {
		t.Fatal("true fault set must be consistent with its own syndrome")
	}
	// The empty hypothesis is inconsistent: healthy 3 tests (2,4) and
	// sees 1, but the empty hypothesis predicts 0.
	if Consistent(g, s, bitset.New(10)) {
		t.Fatal("empty hypothesis should be inconsistent")
	}
	// Superset {4,5}: node 3 healthy tests (2,4): truth 1, hypothesis
	// predicts 1; node 6 tests (5,7): sees 0 (5 healthy in reality) but
	// hypothesis predicts 1 -> inconsistent.
	if Consistent(g, s, bitset.FromMembers(10, []int32{4, 5})) {
		t.Fatal("superset hypothesis should be inconsistent here")
	}
}

func TestRandomFaultsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		size := rng.Intn(10)
		f := RandomFaults(64, size, rng)
		if f.Count() != size {
			t.Fatalf("fault set size %d, want %d", f.Count(), size)
		}
	}
	// Rough uniformity: each node should be hit sometimes.
	hits := make([]int, 8)
	for iter := 0; iter < 400; iter++ {
		f := RandomFaults(8, 2, rng)
		f.ForEach(func(i int) bool { hits[i]++; return true })
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("node %d never sampled in 400 draws", i)
		}
	}
}

func TestClusterFaults(t *testing.T) {
	g := ringGraph(12)
	f := ClusterFaults(g, 0, 4)
	if f.Count() != 4 {
		t.Fatalf("size %d, want 4", f.Count())
	}
	if f.Contains(0) {
		t.Fatal("center must not be faulty")
	}
	// Closest 4 nodes to 0 on C12 are 1, 11 (dist 1) and 2, 10 (dist 2).
	for _, want := range []int{1, 2, 10, 11} {
		if !f.Contains(want) {
			t.Fatalf("cluster missing %d: %v", want, f)
		}
	}
}

func TestNeighborhoodFaults(t *testing.T) {
	g := k4()
	f := NeighborhoodFaults(g, 0, 2)
	if f.Count() != 2 || f.Contains(0) {
		t.Fatalf("bad neighbourhood faults: %v", f)
	}
	full := NeighborhoodFaults(g, 0, 10)
	if full.Count() != 3 {
		t.Fatalf("full neighbourhood should have 3 nodes: %v", full)
	}
}

// TestShardedLookupCounting pins the counting contract across all three
// modes: direct (plain counter), per-worker shards, and the striped
// concurrent view. Every Test must be counted exactly once.
func TestShardedLookupCounting(t *testing.T) {
	F := bitset.New(64)
	F.Add(3)
	l := NewLazy(F, Mimic{})

	// Direct sequential counting.
	for i := 0; i < 10; i++ {
		l.Test(1, 0, 2)
	}
	if l.Lookups() != 10 {
		t.Fatalf("sequential: %d lookups, want 10", l.Lookups())
	}
	l.ResetLookups()

	// Per-worker shards, merged on Close.
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := l.Shard()
			defer sh.Close()
			for i := 0; i < per; i++ {
				u := int32(1 + i%62)
				sh.Test(u, u-1, u+1)
			}
		}()
	}
	wg.Wait()
	if l.Lookups() != workers*per {
		t.Fatalf("shards: %d lookups, want %d", l.Lookups(), workers*per)
	}
	l.ResetLookups()

	// Striped concurrent view.
	c := ForConcurrent(l)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				u := int32(1 + (w*per+i)%62)
				c.Test(u, u-1, u+1)
			}
		}(w)
	}
	wg.Wait()
	if l.Lookups() != workers*per {
		t.Fatalf("concurrent view: %d lookups, want %d", l.Lookups(), workers*per)
	}
}
