package baseline

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// The exact reference implementations below are restricted to graphs
// with at most 64 nodes so fault sets fit in one machine word; that is
// ample for validating the diagnosability claims of [6,14,23,28] on
// small instances (experiment E10) and for ground-truthing Diagnose.

// adjMasks packs each adjacency list into a 64-bit mask.
func adjMasks(g *graph.Graph) ([]uint64, error) {
	if g.N() > 64 {
		return nil, errors.New("baseline: exact reference limited to ≤ 64 nodes")
	}
	adj := make([]uint64, g.N())
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			adj[u] |= 1 << uint(v)
		}
	}
	return adj, nil
}

// Indistinguishable reports whether two fault hypotheses admit a common
// syndrome under the MM model. Only testers outside both sets are
// constrained; for such a tester u with faulty neighbour sets
// A = N(u)∩F1 and B = N(u)∩F2, the result vectors differ iff some pair
// test separates them, which reduces to the O(1) mask conditions below.
func Indistinguishable(adj []uint64, f1, f2 uint64) bool {
	union := f1 | f2
	for u := range adj {
		if union&(1<<uint(u)) != 0 {
			continue
		}
		a := adj[u] & f1
		b := adj[u] & f2
		if a == b {
			continue
		}
		// A pair (v,w) separates F1 from F2 iff v ∈ AΔB and w avoids
		// the other side: v ∈ A\B with w ∉ B gives results (1, 0).
		// Such w exists iff |N(u)\B| ≥ 2 (v itself is one member).
		if a&^b != 0 && bits.OnesCount64(adj[u]&^b) >= 2 {
			return false
		}
		if b&^a != 0 && bits.OnesCount64(adj[u]&^a) >= 2 {
			return false
		}
	}
	return true
}

// DiagnosabilityResult carries the exact diagnosability and, when the
// bound is tight below tMax, a witness pair of indistinguishable fault
// sets of size ≤ δ+1.
type DiagnosabilityResult struct {
	Delta    int
	Witness1 uint64
	Witness2 uint64
}

// Diagnosability computes the exact diagnosability of g (≤ 64 nodes) by
// exhaustive search up to tMax: the largest t such that no two distinct
// fault sets of size ≤ t are indistinguishable. Work is parallelised
// over the candidate larger set.
func Diagnosability(g *graph.Graph, tMax int) (*DiagnosabilityResult, error) {
	adj, err := adjMasks(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	for t := 1; t <= tMax; t++ {
		// Candidate pairs with max(|F1|,|F2|) == t; smaller pairs were
		// cleared at earlier t. Every F2 of size < t is paired with
		// every size-t F1; same-size pairs are deduplicated by
		// requiring F2 < F1 numerically.
		larger := subsetsOfSize(n, t)
		var smaller []uint64
		for s := 0; s < t; s++ {
			smaller = append(smaller, subsetsOfSize(n, s)...)
		}
		found := atomic.Int64{}
		found.Store(-1)
		var wit2 atomic.Uint64
		workers := runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		next := atomic.Int64{}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(larger)) || found.Load() >= 0 {
						return
					}
					f1 := larger[i]
					for _, f2 := range smaller {
						if Indistinguishable(adj, f1, f2) {
							wit2.Store(f2)
							found.Store(int64(i))
							return
						}
					}
					for _, f2 := range larger {
						if f2 >= f1 {
							break // size-t masks are ascending
						}
						if Indistinguishable(adj, f1, f2) {
							wit2.Store(f2)
							found.Store(int64(i))
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		if i := found.Load(); i >= 0 {
			return &DiagnosabilityResult{Delta: t - 1, Witness1: larger[i], Witness2: wit2.Load()}, nil
		}
	}
	return &DiagnosabilityResult{Delta: tMax}, nil
}

// subsetsOfSize lists all size-s subsets of [0,n) as ascending masks
// (Gosper's hack).
func subsetsOfSize(n, s int) []uint64 {
	if s == 0 {
		return []uint64{0}
	}
	if s > n {
		return nil
	}
	var out []uint64
	limit := uint64(1) << uint(n)
	v := uint64(1)<<uint(s) - 1
	for v < limit {
		out = append(out, v)
		c := v & (^v + 1)
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
	return out
}

// ErrAmbiguous means more than one fault hypothesis of size ≤ δ is
// consistent with the syndrome — the graph is not δ-diagnosable, or the
// true fault set exceeded δ.
var ErrAmbiguous = errors.New("baseline: syndrome consistent with multiple fault sets")

// ErrNoCandidate means no fault hypothesis of size ≤ δ explains the
// syndrome.
var ErrNoCandidate = errors.New("baseline: no consistent fault set of size ≤ δ")

// BruteDiagnose finds, by exhaustive enumeration, every fault set of
// size ≤ delta consistent with the syndrome and returns the unique one.
// It is the trusted (if slow) reference the fast algorithms are tested
// against on small instances.
func BruteDiagnose(g *graph.Graph, s syndrome.Syndrome, delta int) (*bitset.Set, error) {
	if g.N() > 64 {
		return nil, errors.New("baseline: BruteDiagnose limited to ≤ 64 nodes")
	}
	var candidates []uint64
	for size := 0; size <= delta; size++ {
		for _, f := range subsetsOfSize(g.N(), size) {
			if consistentMask(g, s, f) {
				candidates = append(candidates, f)
				if len(candidates) > 1 {
					return nil, fmt.Errorf("%w: %#x and %#x", ErrAmbiguous, candidates[0], candidates[1])
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoCandidate
	}
	out := bitset.New(g.N())
	for u := 0; u < g.N(); u++ {
		if candidates[0]&(1<<uint(u)) != 0 {
			out.Add(u)
		}
	}
	return out, nil
}

// consistentMask is syndrome.Consistent specialised to mask hypotheses,
// with early exit on the first contradiction.
func consistentMask(g *graph.Graph, s syndrome.Syndrome, f uint64) bool {
	for u := int32(0); int(u) < g.N(); u++ {
		if f&(1<<uint(u)) != 0 {
			continue
		}
		adj := g.Neighbors(u)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				want := 0
				if f&(1<<uint(adj[i])) != 0 || f&(1<<uint(adj[j])) != 0 {
					want = 1
				}
				if s.Test(u, adj[i], adj[j]) != want {
					return false
				}
			}
		}
	}
	return true
}

// MaskToSet converts a 64-bit fault mask to a bitset over n nodes.
func MaskToSet(n int, mask uint64) *bitset.Set {
	s := bitset.New(n)
	for u := 0; u < n; u++ {
		if mask&(1<<uint(u)) != 0 {
			s.Add(u)
		}
	}
	return s
}
