package baseline

import (
	"errors"
	"math/bits"
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func TestGrayCycleProperties(t *testing.T) {
	for m := 2; m <= 6; m++ {
		seq := GrayCycle(m)
		if len(seq) != 1<<uint(m) {
			t.Fatalf("m=%d: length %d", m, len(seq))
		}
		seen := map[int32]bool{}
		for i, v := range seq {
			if seen[v] {
				t.Fatalf("m=%d: duplicate %d", m, v)
			}
			seen[v] = true
			next := seq[(i+1)%len(seq)]
			if bits.OnesCount32(uint32(v^next)) != 1 {
				t.Fatalf("m=%d: %d -> %d not a hypercube step", m, v, next)
			}
		}
	}
}

// TestFigure1Decomposition reproduces the structure of the paper's
// Fig. 1: node-disjoint cycles joined pairwise by perfect matchings in
// the shape of a smaller hypercube.
func TestFigure1Decomposition(t *testing.T) {
	q := topology.NewHypercube(5)
	g := q.Graph()
	dec, err := NewCycleDecomposition(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Cycles) != 4 {
		t.Fatalf("expected 4 cycles, got %d", len(dec.Cycles))
	}
	seen := bitset.New(g.N())
	for _, cyc := range dec.Cycles {
		for i, u := range cyc {
			if seen.Contains(int(u)) {
				t.Fatalf("node %d in two cycles", u)
			}
			seen.Add(int(u))
			v := cyc[(i+1)%len(cyc)]
			if !g.HasEdge(u, v) {
				t.Fatalf("cycle step %d-%d not an edge of Q5", u, v)
			}
		}
	}
	if seen.Count() != g.N() {
		t.Fatalf("cycles cover %d of %d nodes", seen.Count(), g.N())
	}
	// Matchings exist exactly between subcubes adjacent in Q_{n-m}
	// (here Q2: 0-1, 0-2, 1-3, 2-3) and consist of real edges.
	if dec.Matching(0, 3) != nil || dec.Matching(1, 2) != nil {
		t.Fatal("non-adjacent subcubes must not be matched")
	}
	matched := 0
	for c1 := 0; c1 < 4; c1++ {
		for c2 := c1 + 1; c2 < 4; c2++ {
			m := dec.Matching(c1, c2)
			if m == nil {
				continue
			}
			matched++
			ends := bitset.New(g.N())
			for _, e := range m {
				if !g.HasEdge(e[0], e[1]) {
					t.Fatalf("matching pair %v not an edge", e)
				}
				if ends.Contains(int(e[0])) || ends.Contains(int(e[1])) {
					t.Fatalf("matching reuses a node: %v", e)
				}
				ends.Add(int(e[0]))
				ends.Add(int(e[1]))
			}
			if len(m) != 8 {
				t.Fatalf("matching between Q3 cycles should have 8 edges, got %d", len(m))
			}
		}
	}
	if matched != 4 { // Q2 has 4 edges — the "cycle of cycles" of Fig. 1
		t.Fatalf("expected 4 matchings, got %d", matched)
	}
}

func TestYangDiagnoseCorrectness(t *testing.T) {
	q := topology.NewHypercube(7)
	g := q.Graph()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(8), rng)
		for _, b := range syndrome.AllBehaviors(7) {
			s := syndrome.NewLazy(F, b)
			got, stats, err := YangDiagnose(q, s)
			if err != nil {
				t.Fatalf("behaviour %s: %v", b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: got %v want %v", b.Name(), got, F)
			}
			if stats.Lookups == 0 {
				t.Fatal("stats did not record look-ups")
			}
		}
	}
}

func TestYangDiagnoseMaxFaults(t *testing.T) {
	q := topology.NewHypercube(8)
	g := q.Graph()
	F := syndrome.NeighborhoodFaults(g, 100, 8)
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	got, _, err := YangDiagnose(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(F) {
		t.Fatalf("got %v want %v", got, F)
	}
}

func TestYangRejectsTooSmallCube(t *testing.T) {
	q := topology.NewHypercube(5)
	s := syndrome.NewLazy(bitset.New(32), nil)
	if _, _, err := YangDiagnose(q, s); err == nil {
		t.Fatal("Q5 has too few long cycles for Yang's decomposition; expected error")
	}
}

// TestFigure2ExtendedStar reproduces the paper's Fig. 2 structure.
func TestFigure2ExtendedStar(t *testing.T) {
	q := topology.NewHypercube(6)
	g := q.Graph()
	for _, x := range []int32{0, 17, 63} {
		es, err := HypercubeExtendedStar(6, x)
		if err != nil {
			t.Fatal(err)
		}
		if len(es.Branches) != 6 {
			t.Fatalf("want 6 branches, got %d", len(es.Branches))
		}
		used := bitset.New(g.N())
		used.Add(int(x))
		for _, br := range es.Branches {
			prev := x
			for _, v := range br {
				if !g.HasEdge(prev, v) {
					t.Fatalf("branch step %d-%d not an edge", prev, v)
				}
				if used.Contains(int(v)) {
					t.Fatalf("branches share node %d", v)
				}
				used.Add(int(v))
				prev = v
			}
		}
	}
}

func TestFindExtendedStarGeneric(t *testing.T) {
	for _, nw := range []topology.Network{
		topology.NewHypercube(5),
		topology.NewStar(5),
		topology.NewPancake(5),
	} {
		g := nw.Graph()
		want := nw.Diagnosability()
		for _, x := range []int32{0, int32(g.N() / 2), int32(g.N() - 1)} {
			es, err := FindExtendedStar(g, x, want)
			if err != nil {
				t.Fatalf("%s node %d: %v", nw.Name(), x, err)
			}
			used := bitset.New(g.N())
			used.Add(int(x))
			for _, br := range es.Branches {
				prev := x
				for _, v := range br {
					if !g.HasEdge(prev, v) || used.Contains(int(v)) {
						t.Fatalf("%s: invalid branch at %d", nw.Name(), x)
					}
					used.Add(int(v))
					prev = v
				}
			}
		}
	}
}

func TestCTDiagnoseHypercube(t *testing.T) {
	q := topology.NewHypercube(6)
	g := q.Graph()
	starAt := func(x int32) (*ExtendedStar, error) { return HypercubeExtendedStar(6, x) }
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(7), rng)
		for _, b := range syndrome.AllBehaviors(uint64(trial)) {
			s := syndrome.NewLazy(F, b)
			got, stats, err := CTDiagnose(g, s, starAt)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: got %v want %v (F size %d)", b.Name(), got, F, F.Count())
			}
			if stats.TableEntries != syndrome.TableSize(g) {
				t.Fatal("CT must consume the full syndrome table")
			}
		}
	}
}

func TestCTDiagnoseStarGraph(t *testing.T) {
	st := topology.NewStar(5)
	g := st.Graph()
	delta := st.Diagnosability() // 4
	starCache := make(map[int32]*ExtendedStar)
	starAt := func(x int32) (*ExtendedStar, error) {
		if es, ok := starCache[x]; ok {
			return es, nil
		}
		es, err := FindExtendedStar(g, x, delta)
		if err == nil {
			starCache[x] = es
		}
		return es, err
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		got, _, err := CTDiagnose(g, s, starAt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) {
			t.Fatalf("got %v want %v", got, F)
		}
	}
}

func TestIndistinguishableClassicPair(t *testing.T) {
	// The Section 2 argument: F1 = N(u) and F2 = N(u) ∪ {u} admit a
	// common syndrome.
	q := topology.NewHypercube(4)
	adj, err := adjMasks(q.Graph())
	if err != nil {
		t.Fatal(err)
	}
	var f1 uint64
	for _, v := range q.Graph().Neighbors(0) {
		f1 |= 1 << uint(v)
	}
	f2 := f1 | 1 // add node 0
	if !Indistinguishable(adj, f1, f2) {
		t.Fatal("N(0) and N(0)∪{0} must be indistinguishable")
	}
	if Indistinguishable(adj, 1<<1, 1<<2) {
		t.Fatal("two distinct singletons in Q4 must be distinguishable")
	}
}

func TestDiagnosabilityKnownValues(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive diagnosability is slow")
	}
	cases := []struct {
		nw   topology.Network
		tMax int
		want int
	}{
		{topology.NewHypercube(4), 5, 4},   // [6]: 4-regular, κ=4, N=16 ≥ 11
		{topology.NewCrossedCube(4), 5, 4}, // [14]
		{topology.NewStar(4), 4, 3},        // [28]
		{topology.NewPancake(4), 4, 3},     // [6]
	}
	for _, c := range cases {
		c := c
		t.Run(c.nw.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Diagnosability(c.nw.Graph(), c.tMax)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delta != c.want {
				t.Fatalf("computed δ = %d, literature says %d (witness %#x/%#x)",
					res.Delta, c.want, res.Witness1, res.Witness2)
			}
		})
	}
}

func TestDiagnosabilityWitnessIsValid(t *testing.T) {
	// Q3 is below the [6] threshold (N = 8 < 2n+3 = 9); whatever δ the
	// search returns, its witness pair must be genuinely
	// indistinguishable and of size δ+1.
	q := topology.NewHypercube(3)
	res, err := Diagnosability(q.Graph(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta >= 3 {
		t.Fatalf("δ(Q3) = %d; cannot be ≥ min degree", res.Delta)
	}
	adj, _ := adjMasks(q.Graph())
	if !Indistinguishable(adj, res.Witness1, res.Witness2) {
		t.Fatal("witness pair is distinguishable")
	}
	if res.Witness1 == res.Witness2 {
		t.Fatal("witness pair must be distinct")
	}
	max := bits.OnesCount64(res.Witness1)
	if c := bits.OnesCount64(res.Witness2); c > max {
		max = c
	}
	if max != res.Delta+1 {
		t.Fatalf("witness max size %d, want δ+1 = %d", max, res.Delta+1)
	}
}

func TestBruteDiagnoseMatchesTruth(t *testing.T) {
	q := topology.NewHypercube(4)
	g := q.Graph()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(5), rng)
		for _, b := range syndrome.AllBehaviors(uint64(trial)) {
			s := syndrome.NewLazy(F, b)
			got, err := BruteDiagnose(g, s, 4)
			if err != nil {
				t.Fatalf("behaviour %s: %v", b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: got %v want %v", b.Name(), got, F)
			}
		}
	}
}

func TestBruteDiagnoseDetectsAmbiguity(t *testing.T) {
	// With the bound lifted to δ+1, the classic pair N(u) vs N(u)∪{u}
	// both fit, and the reference must refuse to pick one.
	q := topology.NewHypercube(4)
	g := q.Graph()
	F := syndrome.NeighborhoodFaults(g, 0, 4)
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	_, err := BruteDiagnose(g, s, 5)
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("expected ErrAmbiguous, got %v", err)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	got := subsetsOfSize(4, 2)
	if len(got) != 6 {
		t.Fatalf("C(4,2) = 6, got %d", len(got))
	}
	for i, m := range got {
		if bits.OnesCount64(m) != 2 {
			t.Fatalf("mask %#x has wrong popcount", m)
		}
		if i > 0 && got[i-1] >= m {
			t.Fatal("masks not ascending")
		}
	}
	if len(subsetsOfSize(3, 5)) != 0 {
		t.Fatal("oversized subsets must be empty")
	}
	if len(subsetsOfSize(5, 0)) != 1 {
		t.Fatal("the empty subset")
	}
}
