package baseline

import (
	"errors"
	"fmt"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// GrayCycle returns the binary reflected Gray code of m bits as a cyclic
// Hamiltonian node sequence of Q_m: consecutive entries (including the
// wrap-around) differ in exactly one bit.
func GrayCycle(m int) []int32 {
	n := 1 << uint(m)
	seq := make([]int32, n)
	for i := 0; i < n; i++ {
		seq[i] = int32(i ^ (i >> 1))
	}
	return seq
}

// CycleDecomposition is the Fig. 1 structure: Q_n viewed as 2^{n-m}
// node-disjoint Hamiltonian cycles of subcubes Q_m, pairwise joined by
// perfect matchings whenever their subcube indices are adjacent in
// Q_{n-m}.
type CycleDecomposition struct {
	N, M int
	// Cycles[c] lists the nodes of cycle c in cyclic order; cycle c
	// covers the subcube whose high n-m bits equal c.
	Cycles [][]int32
}

// NewCycleDecomposition builds the decomposition of Q_n into subcube
// Gray cycles (2 ≤ m ≤ n).
func NewCycleDecomposition(n, m int) (*CycleDecomposition, error) {
	if m < 2 || m > n {
		return nil, errors.New("baseline: cycle decomposition needs 2 ≤ m ≤ n")
	}
	gray := GrayCycle(m)
	d := &CycleDecomposition{N: n, M: m}
	for c := 0; c < 1<<uint(n-m); c++ {
		base := int32(c) << uint(m)
		cyc := make([]int32, len(gray))
		for i, g := range gray {
			cyc[i] = base | g
		}
		d.Cycles = append(d.Cycles, cyc)
	}
	return d, nil
}

// Matching returns the perfect matching joining cycles c1 and c2, or nil
// if their subcube indices are not adjacent in Q_{n-m}. Because both
// cycles use the same Gray order, position i of one cycle is matched
// with position i of the other along a single hypercube dimension.
func (d *CycleDecomposition) Matching(c1, c2 int) [][2]int32 {
	diff := c1 ^ c2
	if diff == 0 || diff&(diff-1) != 0 {
		return nil
	}
	m := make([][2]int32, len(d.Cycles[c1]))
	for i := range d.Cycles[c1] {
		m[i] = [2]int32{d.Cycles[c1][i], d.Cycles[c2][i]}
	}
	return m
}

// YangStats profiles a run of the cycle-decomposition algorithm.
type YangStats struct {
	CyclesScanned int   // cycles examined before a fault-free one was found
	Lookups       int64 // total syndrome look-ups
}

// ErrNoHealthyCycle means no fault-free cycle was found — with cycles
// longer than the fault bound and more cycles than faults this cannot
// happen for a valid syndrome.
var ErrNoHealthyCycle = errors.New("baseline: no all-zero cycle found (fault bound exceeded?)")

// YangDiagnose reproduces Yang's hypercube fault diagnosis [27]
// (Section 3 of the paper): decompose Q_n into subcube Gray cycles, find
// a cycle that is all-zero under the syndrome (hence fault-free, being
// longer than the fault bound n), and expand outward, using pairs of
// known-healthy nodes to classify their unknown neighbours across the
// cycle matchings. Time O(n·2^n) for the scan plus the expansion; the
// original's bookkeeping is O(n²·2^n), which the benchmark comparison
// (experiment E9) revisits.
func YangDiagnose(h *topology.Hypercube, s syndrome.Syndrome) (*bitset.Set, *YangStats, error) {
	n := h.Dim()
	g := h.Graph()
	stats := &YangStats{}
	start := s.Lookups()

	// Cycle length must exceed the fault bound n: 2^m ≥ n+1. The cycle
	// count 2^{n-m} must exceed n so a fault-free cycle exists.
	m := 2
	for 1<<uint(m) <= n {
		m++
	}
	if 1<<uint(n-m) <= n {
		return nil, stats, fmt.Errorf("baseline: Q_%d too small for Yang's decomposition (m=%d)", n, m)
	}
	dec, err := NewCycleDecomposition(n, m)
	if err != nil {
		return nil, stats, err
	}

	// Phase 1: find an all-zero cycle. Each node tests its two cycle
	// neighbours; all zero on a cycle longer than n proves it healthy.
	healthyCycle := -1
	for c, cyc := range dec.Cycles {
		stats.CyclesScanned = c + 1
		ok := true
		L := len(cyc)
		for i := 0; i < L && ok; i++ {
			prev := cyc[(i-1+L)%L]
			next := cyc[(i+1)%L]
			if s.Test(cyc[i], prev, next) == 1 {
				ok = false
			}
		}
		if ok {
			healthyCycle = c
			break
		}
	}
	if healthyCycle == -1 {
		stats.Lookups = s.Lookups() - start
		return nil, stats, ErrNoHealthyCycle
	}

	// Phase 2: expansion. status: 0 unknown, 1 healthy, 2 faulty. Every
	// known-healthy node y keeps a known-healthy buddy z adjacent to it;
	// the decisive test s_y(x, z) classifies any unknown neighbour x.
	status := make([]uint8, g.N())
	buddy := make([]int32, g.N())
	cyc := dec.Cycles[healthyCycle]
	L := len(cyc)
	queue := make([]int32, 0, g.N())
	for i, u := range cyc {
		status[u] = 1
		buddy[u] = cyc[(i+1)%L]
		queue = append(queue, u)
	}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		z := buddy[y]
		for _, x := range g.Neighbors(y) {
			if status[x] != 0 || x == z {
				continue
			}
			if s.Test(y, x, z) == 0 {
				status[x] = 1
				buddy[x] = y
				queue = append(queue, x)
			} else {
				status[x] = 2
			}
		}
	}

	faults := bitset.New(g.N())
	for u, st := range status {
		if st == 2 {
			faults.Add(u)
		}
	}
	stats.Lookups = s.Lookups() - start
	return faults, stats, nil
}
