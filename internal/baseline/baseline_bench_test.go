package baseline

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func BenchmarkGrayCycle16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(GrayCycle(16)) != 1<<16 {
			b.Fatal("bad length")
		}
	}
}

func BenchmarkYangDiagnoseQ10(b *testing.B) {
	nw := topology.NewHypercube(10)
	F := syndrome.RandomFaults(nw.Graph().N(), 10, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := YangDiagnose(nw, s)
		if err != nil || !got.Equal(F) {
			b.Fatal("yang failed")
		}
	}
}

func BenchmarkCTDiagnoseQ8(b *testing.B) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 8, rand.New(rand.NewSource(2)))
	starAt := func(x int32) (*ExtendedStar, error) { return HypercubeExtendedStar(8, x) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		got, _, err := CTDiagnose(g, s, starAt)
		if err != nil || !got.Equal(F) {
			b.Fatal("ct failed")
		}
	}
}

func BenchmarkFindExtendedStarS6(b *testing.B) {
	st := topology.NewStar(6)
	g := st.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindExtendedStar(g, int32(i%g.N()), 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndistinguishableQ5(b *testing.B) {
	q := topology.NewHypercube(5)
	adj, err := adjMasks(q.Graph())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate two disjoint masks around the node space.
		f1 := uint64(0x1F) << uint(i%27)
		f2 := uint64(0x0F) << uint((i+7)%27)
		Indistinguishable(adj, f1, f2)
	}
}

func BenchmarkDiagnosabilityQ3(b *testing.B) {
	q := topology.NewHypercube(3)
	for i := 0; i < b.N; i++ {
		res, err := Diagnosability(q.Graph(), 3)
		if err != nil || res.Delta != 2 {
			b.Fatalf("δ(Q3) should be 2: %v %v", res, err)
		}
	}
}
