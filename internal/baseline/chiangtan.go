// Package baseline implements the comparator algorithms the paper
// measures itself against: the Chiang–Tan extended-star node-diagnosis
// approach [8] (Section 3/6 comparison), Yang's cycle-decomposition
// algorithm for hypercubes [27] (Section 3), and an exact brute-force
// reference used to validate diagnosability claims on small instances.
package baseline

import (
	"errors"
	"fmt"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// ExtendedStar is the Fig. 2 structure: a root x and `n` node-disjoint
// branch paths x–a–b–c–e (disjoint except for the shared root). Only the
// first four nodes of each branch are used by the decision rule.
type ExtendedStar struct {
	Root     int32
	Branches [][4]int32 // (a, b, c, e) per branch
}

// ErrNoExtendedStar reports that the requested number of disjoint
// branches could not be constructed at a node — the applicability limit
// of Chiang and Tan's technique that Stewart's Section 6 emphasises.
var ErrNoExtendedStar = errors.New("baseline: node is not the root of a full extended star")

// FindExtendedStar builds an extended star with `branches` disjoint
// branches rooted at x, one starting at each of x's first `branches`
// neighbours, by depth-first search with backtracking across branches
// (a budget caps pathological searches). Cost is modest but — as the
// paper points out — strictly additional to the diagnosis itself.
func FindExtendedStar(g *graph.Graph, x int32, branches int) (*ExtendedStar, error) {
	if branches > g.Degree(x) {
		return nil, fmt.Errorf("%w: %d branches requested at degree-%d node", ErrNoExtendedStar, branches, g.Degree(x))
	}
	used := bitset.New(g.N())
	used.Add(int(x))
	starts := g.Neighbors(x)[:branches]
	result := make([][4]int32, branches)
	budget := 1 << 20

	// extend grows branch bi from depth d (result[bi][:d] fixed); on
	// depth 4 it moves to the next branch, so failures backtrack across
	// branch boundaries.
	var build func(bi, d int, cur int32) bool
	build = func(bi, d int, cur int32) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if d == 4 {
			if bi+1 == branches {
				return true
			}
			a := starts[bi+1]
			if used.Contains(int(a)) {
				return false
			}
			used.Add(int(a))
			result[bi+1][0] = a
			if build(bi+1, 1, a) {
				return true
			}
			used.Remove(int(a))
			return false
		}
		for _, nxt := range g.Neighbors(cur) {
			if used.Contains(int(nxt)) {
				continue
			}
			used.Add(int(nxt))
			result[bi][d] = nxt
			if build(bi, d+1, nxt) {
				return true
			}
			used.Remove(int(nxt))
		}
		return false
	}

	a := starts[0]
	used.Add(int(a))
	result[0][0] = a
	if !build(0, 1, a) {
		return nil, fmt.Errorf("%w: search failed at node %d", ErrNoExtendedStar, x)
	}
	return &ExtendedStar{Root: x, Branches: result}, nil
}

// HypercubeExtendedStar builds the analytic extended star of Q_n (n ≥ 5)
// at x: branch i follows dimensions i, i+1, i+2, i+3 (mod n). Distinct
// branches flip cyclic runs with distinct starts and lengths ≤ 4 < n, so
// the branches are node-disjoint.
func HypercubeExtendedStar(n int, x int32) (*ExtendedStar, error) {
	if n < 5 {
		return nil, fmt.Errorf("%w: analytic construction needs n ≥ 5", ErrNoExtendedStar)
	}
	es := &ExtendedStar{Root: x, Branches: make([][4]int32, n)}
	for i := 0; i < n; i++ {
		v := x
		for step := 0; step < 4; step++ {
			v ^= int32(1) << uint((i+step)%n)
			es.Branches[i][step] = v
		}
	}
	return es, nil
}

// BranchVerdict classifies one branch by its three chained tests
// t1 = s_a(x,b), t2 = s_b(a,c), t3 = s_c(b,e).
type BranchVerdict int

const (
	// BranchMixed is any pattern other than quiet or accusing.
	BranchMixed BranchVerdict = iota
	// BranchQuiet is (0,0,0): a fault-free branch under a healthy root.
	BranchQuiet
	// BranchAccusing is (1,0,0): a fault-free branch under a faulty root.
	BranchAccusing
)

// ClassifyBranch evaluates the three chained tests of one branch.
func ClassifyBranch(s syndrome.Syndrome, x int32, br [4]int32) BranchVerdict {
	t1 := s.Test(br[0], x, br[1])
	t2 := s.Test(br[1], br[0], br[2])
	t3 := s.Test(br[2], br[1], br[3])
	switch {
	case t1 == 0 && t2 == 0 && t3 == 0:
		return BranchQuiet
	case t1 == 1 && t2 == 0 && t3 == 0:
		return BranchAccusing
	default:
		return BranchMixed
	}
}

// NodeFaulty applies the extended-star decision rule at one root with n
// branches, valid when the total number of faults is at most n:
//
//	x is faulty  ⟺  #accusing > #quiet.
//
// Correctness (details in DESIGN.md): a quiet branch under a faulty root
// forces a, b, c faulty (3 faults); an accusing branch under a healthy
// root forces b, c faulty (2 faults); fault-free branches are quiet
// under a healthy root and accusing under a faulty one. Counting faults
// over the disjoint branches gives, with f ≤ n total faults:
// healthy root ⇒ quiet ≥ accusing; faulty root ⇒ accusing ≥ quiet + 1.
func NodeFaulty(s syndrome.Syndrome, es *ExtendedStar) bool {
	quiet, accusing := 0, 0
	for _, br := range es.Branches {
		switch ClassifyBranch(s, es.Root, br) {
		case BranchQuiet:
			quiet++
		case BranchAccusing:
			accusing++
		}
	}
	return accusing > quiet
}

// CTStats reports the cost profile of a Chiang–Tan run, the quantities
// Stewart's Section 6 compares: unlike Set_Builder, the approach needs
// the complete syndrome table plus per-node star construction.
type CTStats struct {
	TableEntries int64 // size of the syndrome table that was materialised
	RuleLookups  int64 // look-ups made by the decision rule (3 per branch per node)
}

// CTDiagnose diagnoses every node independently with the extended-star
// rule, mirroring Chiang and Tan's O(ΔN) algorithm [8]. starAt supplies
// the extended star per node (analytic or FindExtendedStar). The lazy
// source syndrome is first materialised into a full table — the cost the
// paper's Section 6 charges this baseline with.
func CTDiagnose(g *graph.Graph, src syndrome.Syndrome, starAt func(x int32) (*ExtendedStar, error)) (*bitset.Set, *CTStats, error) {
	table := syndrome.BuildTable(g, src)
	stats := &CTStats{TableEntries: table.Entries()}
	faults := bitset.New(g.N())
	for x := int32(0); int(x) < g.N(); x++ {
		es, err := starAt(x)
		if err != nil {
			return nil, stats, fmt.Errorf("node %d: %w", x, err)
		}
		if NodeFaulty(table, es) {
			faults.Add(int(x))
		}
	}
	stats.RuleLookups = table.Lookups()
	return faults, stats, nil
}
