package comparisondiag

// Integration tests against the public facade: everything a downstream
// user would touch, wired end to end.

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	nw := NewHypercube(8)
	g := nw.Graph()
	rng := rand.New(rand.NewSource(1))
	faults := RandomFaults(g.N(), nw.Diagnosability(), rng)
	s := NewLazySyndrome(faults, Mimic{})
	found, stats, err := Diagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	if !found.Equal(faults) {
		t.Fatalf("got %v want %v", found, faults)
	}
	if stats.TotalLookups >= SyndromeTableSize(g) {
		t.Fatal("facade lost the look-up economy")
	}
}

func TestFacadeParseAndDiagnoseEveryFamily(t *testing.T) {
	specs := []string{
		"q:7", "cq:7", "tq:7", "fq:7", "eq:7,3", "aq:8", "sq:6", "tnq:7",
		"kary:3,4", "akary:7,2", "star:6", "nkstar:6,3", "pancake:6", "arr:6,4",
	}
	rng := rand.New(rand.NewSource(2))
	for _, spec := range specs {
		nw, err := ParseNetwork(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g := nw.Graph()
		faults := RandomFaults(g.N(), nw.Diagnosability(), rng)
		s := NewLazySyndrome(faults, Mimic{})
		found, _, err := Diagnose(nw, s)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !found.Equal(faults) {
			t.Fatalf("%s: misdiagnosis", spec)
		}
	}
}

func TestFacadeErrorSentinels(t *testing.T) {
	nk := NewNKStar(6, 2)
	s := NewLazySyndrome(NewFaultSet(nk.Graph().N()), nil)
	_, _, err := Diagnose(nk, s)
	if !errors.Is(err, ErrNoPartition) {
		t.Fatalf("want ErrNoPartition, got %v", err)
	}
}

func TestFacadeDiagnoseAnyFallsBack(t *testing.T) {
	nk := NewNKStar(6, 2) // gap G3: no partition
	g := nk.Graph()
	rng := rand.New(rand.NewSource(3))
	faults := RandomFaults(g.N(), nk.Diagnosability(), rng)
	s := NewLazySyndrome(faults, Mimic{})
	found, stats, err := DiagnoseAny(nk, s)
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		t.Fatal("fallback path should report nil stats")
	}
	if !found.Equal(faults) {
		t.Fatalf("got %v want %v", found, faults)
	}

	// And the partition path still reports stats.
	q := NewHypercube(7)
	faults2 := RandomFaults(q.Graph().N(), 7, rng)
	s2 := NewLazySyndrome(faults2, Mimic{})
	found2, stats2, err := DiagnoseAny(q, s2)
	if err != nil || stats2 == nil || !found2.Equal(faults2) {
		t.Fatalf("partition path broken: %v", err)
	}
}

// Property: for random fault sets of legal size and arbitrary adversary
// seeds, diagnosis on Q7 is exact. testing/quick drives the randomness.
func TestQuickDiagnoseExactness(t *testing.T) {
	nw := NewHypercube(7)
	g := nw.Graph()
	f := func(seed int64, sizeRaw uint8, advSeed uint64) bool {
		size := int(sizeRaw) % (nw.Diagnosability() + 1)
		rng := rand.New(rand.NewSource(seed))
		faults := RandomFaults(g.N(), size, rng)
		s := NewLazySyndrome(faults, RandomBehavior{Seed: advSeed})
		found, _, err := Diagnose(nw, s)
		return err == nil && found.Equal(faults)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the brute-force reference and the fast algorithm agree on
// a 16-node instance for every fault set quick generates.
func TestQuickFastMatchesBruteForce(t *testing.T) {
	nw := NewKAryNCube(4, 2) // 16-node torus, δ = 4, κ = 4
	g := nw.Graph()
	delta := 4
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Skipf("no partition: %v", err)
	}
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw) % (delta + 1)
		rng := rand.New(rand.NewSource(seed))
		faults := RandomFaults(g.N(), size, rng)
		s := NewLazySyndrome(faults, RandomBehavior{Seed: uint64(seed)})
		fast, _, err := DiagnoseGraph(g, delta, parts, s, Options{})
		if err != nil {
			return false
		}
		brute, err := BruteDiagnose(g, s, delta)
		if err != nil {
			return false
		}
		return fast.Equal(brute) && fast.Equal(faults)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSetBuilderByProductTree(t *testing.T) {
	// The paper's Conclusions: when the fault set is not a cut, the
	// algorithm's by-product is a tree spanning the healthy nodes.
	nw := NewHypercube(7)
	g := nw.Graph()
	faults := RandomFaults(g.N(), 7, rand.New(rand.NewSource(9)))
	s := NewLazySyndrome(faults, Mimic{})
	seed := int32(0)
	for faults.Contains(int(seed)) {
		seed++
	}
	r := SetBuilder(g, s, seed, 7, nil)
	healthyCount := g.N() - faults.Count()
	if r.U.Count() == healthyCount {
		// Verify it is a spanning tree of the healthy subgraph: every
		// non-root member has a parent edge inside U.
		edges := 0
		r.U.ForEach(func(i int) bool {
			if int32(i) != seed {
				if r.Parent[i] < 0 || !r.U.Contains(int(r.Parent[i])) {
					t.Fatalf("node %d lacks a tree parent", i)
				}
				edges++
			}
			return true
		})
		if edges != healthyCount-1 {
			t.Fatalf("tree has %d edges, want %d", edges, healthyCount-1)
		}
	}
}

func TestFacadeCTAndYangAgree(t *testing.T) {
	n := 7
	nw := NewHypercube(n)
	g := nw.Graph()
	faults := RandomFaults(g.N(), n, rand.New(rand.NewSource(4)))
	s := NewLazySyndrome(faults, Inverted{})

	ours, _, err := Diagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	yang, _, err := YangDiagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	starAt := func(x int32) (*ExtendedStar, error) { return HypercubeExtendedStar(n, x) }
	ct, _, err := CTDiagnose(g, s, starAt)
	if err != nil {
		t.Fatal(err)
	}
	if !ours.Equal(yang) || !ours.Equal(ct) || !ours.Equal(faults) {
		t.Fatalf("algorithms disagree: ours=%v yang=%v ct=%v truth=%v", ours, yang, ct, faults)
	}
}
