// Package comparisondiag is a Go implementation of fault diagnosis
// under the comparison (MM) model, reproducing
//
//	I. A. Stewart, "A general algorithm for detecting faults under the
//	comparison diagnosis model", IPDPS 2010.
//
// The package re-exports the library's public surface from the internal
// implementation packages:
//
//   - interconnection-network construction (14 families of Section 5),
//   - MM-model syndromes with pluggable faulty-tester behaviour,
//   - the Set_Builder algorithm and the Theorem 1 Diagnose procedure,
//   - the Chiang–Tan and Yang baselines plus exact references,
//   - a BSP simulator for the distributed protocols of the Conclusions.
//
// Quick start:
//
//	nw := comparisondiag.NewHypercube(10)
//	faults := comparisondiag.RandomFaults(nw.Graph().N(), 10, rng)
//	s := comparisondiag.NewLazySyndrome(faults, comparisondiag.Mimic{})
//	found, stats, err := comparisondiag.Diagnose(nw, s)
//	// found.Equal(faults) == true
//
// # Serving many syndromes: the Engine
//
// The free functions rebuild all syndrome-independent state per call.
// When one network is diagnosed again and again — monitoring loops,
// Monte-Carlo studies, serving traffic — bind an Engine once instead:
// it precomputes the Theorem 1 partition, pools correctly sized
// scratches, binds a word-parallel final-pass kernel from the
// network's declared (and CSR-verified) Cayley structure — hypercubes
// and their folded/enhanced/augmented variants, k-ary tori — and
// exposes a batch API with a worker pool. Results and syndrome look-up
// counts are bit-identical to the free functions; Engine.KernelName
// reports the bound kernel, and docs/kernels.md describes the
// descriptor/registry architecture and how to add a family.
//
//	eng := comparisondiag.NewEngine(nw)
//	found, stats, err := eng.Diagnose(s)           // one syndrome
//	results := eng.DiagnoseBatch(syndromes, comparisondiag.BatchOptions{})
//	// results[i] corresponds to syndromes[i]; throughput scales with
//	// workers and, on one core, with the engine's amortised hot path.
package comparisondiag

import (
	"comparisondiag/internal/baseline"
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/distsim"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/schedule"
	"comparisondiag/internal/serve"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Core model types.
type (
	// Graph is an immutable undirected graph over dense int32 node ids.
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// FaultSet is a set of node ids (faulty processors).
	FaultSet = bitset.Set
	// Network is an interconnection network with diagnosis metadata.
	Network = topology.Network
	// Part is one cell of a diagnosis partition.
	Part = topology.Part
	// Syndrome serves MM-model comparison test results.
	Syndrome = syndrome.Syndrome
	// Behavior models the answers of faulty testers.
	Behavior = syndrome.Behavior
	// SyndromeTable is a fully materialised syndrome.
	SyndromeTable = syndrome.Table
	// Stats reports the cost profile of a Diagnose call.
	Stats = core.Stats
	// Options tunes Diagnose.
	Options = core.Options
	// SetBuilderResult is the outcome of one Set_Builder run.
	SetBuilderResult = core.SetBuilderResult
	// Scratch holds reusable hot-path buffers (see core.Scratch for the
	// result-lifetime contract of scratch-backed calls).
	Scratch = core.Scratch
	// Engine is a diagnosis handle bound once to a network: partition,
	// scratch pools and kernel selection are precomputed, then many
	// syndromes are served with Diagnose/DiagnoseBatch.
	Engine = core.Engine
	// BatchOptions tunes Engine.DiagnoseBatch (worker pool, persistent
	// Pool, hypothesis-grouped shared certification and shared
	// final-prefix growth — see docs/runtime.md).
	BatchOptions = core.BatchOptions
	// BatchResult is one syndrome's outcome in a DiagnoseBatch call.
	BatchResult = core.BatchResult
	// BatchPool abstracts the worker pool DiagnoseBatch runs on;
	// CampaignRuntime implements it with persistent workers.
	BatchPool = core.BatchPool
	// ResultCache memoises whole diagnosis outcomes per (hypothesis,
	// behaviour, bound, strategy) — opt in via Options.ResultCache.
	ResultCache = core.ResultCache
	// CacheStats is a ResultCache observability snapshot.
	CacheStats = core.CacheStats
	// ExtendedStar is the Chiang–Tan Fig. 2 structure.
	ExtendedStar = baseline.ExtendedStar
	// DistStats reports the cost of a distributed protocol run.
	DistStats = distsim.Stats
	// CayleyDescriptor declares a network's algebraic adjacency
	// structure; engines bind specialised final-pass kernels from it
	// (see docs/kernels.md).
	CayleyDescriptor = graph.CayleyDescriptor
	// XORCayley declares N(u) = {u ⊕ m} over a mask set (hypercubes
	// and their folded/enhanced/augmented variants).
	XORCayley = graph.XORCayley
	// AdditiveCayley declares the k-ary n-cube's ±1-per-digit
	// generators.
	AdditiveCayley = graph.AdditiveCayley
	// MixedRadixCayley declares per-dimension arities and arbitrary
	// digit-vector generators (augmented k-ary n-cubes).
	MixedRadixCayley = graph.MixedRadixCayley
	// CayleyStructured is the optional Network extension that declares
	// a CayleyDescriptor.
	CayleyStructured = topology.CayleyStructured
	// Adjacencer is the neighbour-enumeration interface the diagnosis
	// layer runs against: a materialised *Graph (CSR) or an implicit
	// descriptor-backed generator (see docs/scale.md).
	Adjacencer = graph.Adjacencer
	// CayleyAdjacency generates a Cayley graph's adjacency on the fly
	// from its descriptor — no CSR arrays, O(degree) working memory.
	CayleyAdjacency = graph.CayleyAdjacency
)

// Churn tolerance: incremental rebinding, degraded-mode diagnosis and
// the distsim fault-injection harness (see docs/churn.md).
type (
	// GraphRemoval is the delta of Graph.RemoveNodes/RemoveEdges: the
	// compacted surviving component plus the old↔new id maps.
	GraphRemoval = graph.Removal
	// GraphGrowth is the gain-direction delta of RestoreGraph (or
	// Graph.Flap): the regrown component, its id maps, and a Remaining
	// removal for whatever is still missing.
	GraphGrowth = graph.Growth
	// GraphDelta is the sealed union of *GraphRemoval and *GraphGrowth
	// accepted by Engine.Rebind and Engine.Survivor.
	GraphDelta = graph.Delta
	// RebindReport summarises one Engine.Rebind or Engine.Survivor
	// derivation: node/edge losses, δ→δ′ descent or ascent, partition
	// survival/re-growth, kernel fallback or promotion, and cache
	// remapping.
	RebindReport = core.RebindReport
	// FaultPlan is a deterministic, seedable network fault-injection
	// schedule for the BSP simulator (drops, duplicates, delays, slow
	// links, node crashes).
	FaultPlan = distsim.FaultPlan
	// SlowLink declares a fixed extra delay on one edge of a FaultPlan.
	SlowLink = distsim.SlowLink
	// Crash silences one node from a given round on.
	Crash = distsim.Crash
	// Rejoin returns a crashed node to service from a given round on.
	Rejoin = distsim.Rejoin
	// RecoveryPlan schedules node re-joins against a FaultPlan's
	// crashes (see CollectServer.ReplayRecovering).
	RecoveryPlan = distsim.RecoveryPlan
	// FaultStats counts a run's injected faults.
	FaultStats = distsim.FaultStats
	// FaultEvent is one injected fault in a run's replayable ledger.
	FaultEvent = distsim.FaultEvent
)

// RestoreGraph re-admits removed nodes/edges into a removal's
// survivor, producing the GraphGrowth that Engine.Rebind ascends with;
// a full restore reproduces the original graph bit-identically.
var RestoreGraph = graph.Restore

// Faulty-tester behaviours (see syndrome.Behavior).
type (
	// AllZero vouches for everyone.
	AllZero = syndrome.AllZero
	// AllOne accuses everyone.
	AllOne = syndrome.AllOne
	// Mimic answers exactly like a healthy tester.
	Mimic = syndrome.Mimic
	// Inverted answers the opposite of the truth.
	Inverted = syndrome.Inverted
	// RandomBehavior answers pseudo-randomly but deterministically.
	RandomBehavior = syndrome.Random
)

// Strategy selects the part certificate used by Diagnose.
const (
	// StrategyScan is the robust default certificate.
	StrategyScan = core.StrategyScan
	// StrategyPaper is the paper-literal contributor certificate.
	StrategyPaper = core.StrategyPaper
)

// Topology constructors (Section 5 families).
var (
	// NewHypercube constructs Q_n.
	NewHypercube = topology.NewHypercube
	// NewCrossedCube constructs CQ_n.
	NewCrossedCube = topology.NewCrossedCube
	// NewTwistedCube constructs TQ_n (odd n).
	NewTwistedCube = topology.NewTwistedCube
	// NewFoldedHypercube constructs FQ_n.
	NewFoldedHypercube = topology.NewFoldedHypercube
	// NewEnhancedHypercube constructs Q_{n,f}.
	NewEnhancedHypercube = topology.NewEnhancedHypercube
	// NewAugmentedCube constructs AQ_n.
	NewAugmentedCube = topology.NewAugmentedCube
	// NewShuffleCube constructs SQ_n (n ≡ 2 mod 4).
	NewShuffleCube = topology.NewShuffleCube
	// NewTwistedNCube constructs TQ'_n.
	NewTwistedNCube = topology.NewTwistedNCube
	// NewKAryNCube constructs Q^k_n.
	NewKAryNCube = topology.NewKAryNCube
	// NewAugmentedKAryNCube constructs AQ_{n,k}.
	NewAugmentedKAryNCube = topology.NewAugmentedKAryNCube
	// NewStar constructs S_n.
	NewStar = topology.NewStar
	// NewNKStar constructs S_{n,k}.
	NewNKStar = topology.NewNKStar
	// NewPancake constructs P_n.
	NewPancake = topology.NewPancake
	// NewArrangement constructs A_{n,k}.
	NewArrangement = topology.NewArrangement
	// ParseNetwork builds a network from a spec like "q:10" or
	// "kary:4,3"; see its documentation for the grammar.
	ParseNetwork = topology.Parse
	// ValidatePartition checks the Theorem 1 preconditions for a
	// custom partition.
	ValidatePartition = topology.ValidatePartition
	// NetworkCatalog lists the supported families and their formulas.
	NetworkCatalog = topology.Catalog
)

// Syndrome and fault-set helpers.
var (
	// NewFaultSet returns an empty fault set over n nodes.
	NewFaultSet = bitset.New
	// FaultSetOf builds a fault set from explicit members.
	FaultSetOf = bitset.FromMembers
	// RandomFaults samples a uniform fault set of the given size.
	RandomFaults = syndrome.RandomFaults
	// ClusterFaults concentrates faults around a centre node.
	ClusterFaults = syndrome.ClusterFaults
	// NeighborhoodFaults makes a node's neighbourhood faulty.
	NeighborhoodFaults = syndrome.NeighborhoodFaults
	// NewLazySyndrome serves test results on demand from a fault set.
	NewLazySyndrome = syndrome.NewLazy
	// BuildSyndromeTable materialises a complete syndrome table.
	BuildSyndromeTable = syndrome.BuildTable
	// SyndromeTableSize is Σ_u C(deg(u), 2).
	SyndromeTableSize = syndrome.TableSize
	// SyndromeConsistent checks a fault hypothesis against a syndrome.
	SyndromeConsistent = syndrome.Consistent
	// AllBehaviors returns one instance of every faulty-tester model.
	AllBehaviors = syndrome.AllBehaviors
)

// Diagnosis algorithms.
var (
	// NewEngine binds an Engine to a network (bind once, diagnose many).
	NewEngine = core.NewEngine
	// NewGraphEngine binds an Engine to an explicit graph and partition.
	NewGraphEngine = core.NewGraphEngine
	// NewCayleyEngine binds an implicit engine straight from a
	// CayleyDescriptor — no CSR is ever materialised, so million-node
	// instances bind in the memory of their scratch buffers (see
	// docs/scale.md).
	NewCayleyEngine = core.NewCayleyEngine
	// NewCayleyAdjacency compiles a CayleyDescriptor into an implicit
	// Adjacencer (validating its shape, not its edges).
	NewCayleyAdjacency = graph.NewCayleyAdjacency
	// CayleyParts computes the Theorem 1 partition of a declared Cayley
	// family from its coset structure — no edge scan, O(parts) memory.
	CayleyParts = topology.CayleyParts
	// CSRFootprintBytes estimates the CSR bytes an n-node m-edge graph
	// materialises; compare CayleyAdjacency.FootprintBytes.
	CSRFootprintBytes = graph.CSRFootprintBytes
	// Diagnose solves the fault diagnosis problem (Theorem 1).
	Diagnose = core.Diagnose
	// DiagnoseOpts is Diagnose with explicit Options.
	DiagnoseOpts = core.DiagnoseOpts
	// DiagnoseGraph runs the Theorem 1 procedure on a custom graph.
	DiagnoseGraph = core.DiagnoseGraph
	// DiagnoseWithVerification is the partition-free fallback.
	DiagnoseWithVerification = core.DiagnoseWithVerification
	// DiagnoseAny tries the partition procedure, then the fallback.
	DiagnoseAny = core.DiagnoseAny
	// SetBuilder is the paper's Set_Builder(u0) procedure.
	SetBuilder = core.SetBuilder
	// SetBuilderInto is SetBuilder against a reusable Scratch: zero
	// steady-state allocations; the result is a view into the scratch.
	SetBuilderInto = core.SetBuilderInto
	// SetBuilderParallel splits the growth rounds across workers for
	// very large graphs — CSR or implicit adjacency alike; same tree,
	// possibly more look-ups.
	SetBuilderParallel = core.SetBuilderParallel
	// NewScratch allocates hot-path buffers for graphs on n nodes.
	NewScratch = core.NewScratch
	// NewResultCache builds a bounded engine result cache (see
	// docs/runtime.md).
	NewResultCache = core.NewResultCache
	// NewResultCacheWithAdmission is NewResultCache with an optional
	// admit-on-second-sight admission policy (scan resistance; see
	// docs/churn.md).
	NewResultCacheWithAdmission = core.NewResultCacheWithAdmission
	// NewResultCacheWithSketch is NewResultCache with count-min-sketch
	// admission: a key is admitted after an estimated threshold
	// sightings, with periodic counter aging (see docs/churn.md).
	NewResultCacheWithSketch = core.NewResultCacheWithSketch
	// ClampWorkers normalises a worker count against GOMAXPROCS.
	ClampWorkers = core.ClampWorkers
	// CertifyPart is the scan certificate for a partition cell.
	CertifyPart = core.CertifyPart
	// VerifyCayley checks a CayleyDescriptor against a graph's CSR
	// adjacency; engines require this to pass before trusting a
	// declaration (Engine.BindCayley runs it for you).
	VerifyCayley = graph.VerifyCayley
	// DetectXORCayley probes a raw graph for XOR-Cayley structure.
	DetectXORCayley = graph.DetectXORCayley
)

// Baselines and references.
var (
	// CTDiagnose is the Chiang–Tan extended-star baseline.
	CTDiagnose = baseline.CTDiagnose
	// FindExtendedStar builds an extended star by search.
	FindExtendedStar = baseline.FindExtendedStar
	// HypercubeExtendedStar builds the analytic Q_n extended star.
	HypercubeExtendedStar = baseline.HypercubeExtendedStar
	// YangDiagnose is Yang's cycle-decomposition hypercube baseline.
	YangDiagnose = baseline.YangDiagnose
	// BruteDiagnose is the exhaustive exact reference (≤ 64 nodes).
	BruteDiagnose = baseline.BruteDiagnose
	// ExactDiagnosability computes δ exactly on small graphs.
	ExactDiagnosability = baseline.Diagnosability
)

// Distributed protocols (Conclusions).
var (
	// RunWave executes the distributed Set_Builder protocol.
	RunWave = distsim.RunWave
	// RunDistCT executes the distributed extended-star protocol.
	RunDistCT = distsim.RunDistCT
	// RunCentralCollect gathers the complete syndrome at node 0 and
	// diagnoses centrally — the baseline the Conclusions argue against.
	RunCentralCollect = distsim.RunCentralCollect
)

// Test scheduling (the Section 6 one-port cost model).
type (
	// ScheduledTest is one comparison test s_U(V, W).
	ScheduledTest = schedule.Test
	// TestPlan is a conflict-free assignment of tests to time slots.
	TestPlan = schedule.Plan
	// TestRecorder captures the demand set of a diagnosis run.
	TestRecorder = schedule.Recorder
)

var (
	// NewTestRecorder wraps a syndrome and records consulted tests.
	NewTestRecorder = schedule.NewRecorder
	// ScheduleTests greedily packs tests into one-port slots.
	ScheduleTests = schedule.Greedy
	// ScheduleLowerBound is the busiest-participant makespan bound.
	ScheduleLowerBound = schedule.LowerBound
	// FullSyndromeTests enumerates a graph's complete test set.
	FullSyndromeTests = schedule.FullSyndromeTests
)

// Fault-injection campaigns (robustness beyond the guarantee).
type (
	// CampaignConfig tunes a Monte-Carlo fault-injection sweep.
	CampaignConfig = campaign.Config
	// CampaignPoint aggregates outcomes at one fault count.
	CampaignPoint = campaign.Point
	// CampaignRuntime is the persistent batch-serving worker pool
	// (pinned scratches and PRNGs, chunked trial queue); it implements
	// BatchPool and drives SweepRuntime (see docs/runtime.md).
	CampaignRuntime = campaign.Runtime
)

// CampaignSweep runs a fault-injection campaign against Diagnose.
var CampaignSweep = campaign.Sweep

// NewCampaignRuntime starts a persistent worker pool bound to an
// engine; share it across sweeps and batches, Close when done.
var NewCampaignRuntime = campaign.NewRuntime

// NewShardedCampaignRuntime starts one worker group per engine
// snapshot, so Q20-scale sweeps spread over several scratch pools and
// binding snapshots; outcomes stay bit-identical across shard counts.
var NewShardedCampaignRuntime = campaign.NewShardedRuntime

// CampaignSweepRuntime is CampaignSweep on a caller-owned runtime.
var CampaignSweepRuntime = campaign.SweepRuntime

type (
	// Service is the diagnosis-as-a-service HTTP front end behind
	// cmd/diagnosed: an engine registry, per-engine request coalescing
	// into grouped DiagnoseBatch calls, streaming campaigns, and a
	// Prometheus /metrics exporter (see docs/service.md). It implements
	// http.Handler.
	Service = serve.Server
	// ServiceConfig tunes a Service (registry cap, coalescing window,
	// batch ceiling, per-engine cache and pool sizes).
	ServiceConfig = serve.Config
	// ServiceSnapshot is the programmatic form of /metrics.
	ServiceSnapshot = serve.Snapshot
)

// NewService builds a diagnosis service from cfg (zero value =
// defaults); serve it with any http.Server and stop it with Close.
var NewService = serve.New

// ParseBehavior resolves a behaviour name ("mimic", "allzero",
// "allone", "inverted", "random") and seed to a Behavior — the parser
// behind cmd/diagnose -behavior and the service's JSON requests.
var ParseBehavior = syndrome.ParseBehavior

// Sentinel errors re-exported for errors.Is checks.
var (
	// ErrNoPartition: the network cannot meet Theorem 1's partition
	// precondition (gap G3); use DiagnoseWithVerification.
	ErrNoPartition = topology.ErrNoPartition
	// ErrNoHealthyPart: no candidate part certified fault-free.
	ErrNoHealthyPart = core.ErrNoHealthyPart
	// ErrTooManyFaults: the diagnosis exceeded the fault bound.
	ErrTooManyFaults = core.ErrTooManyFaults
	// ErrNoSurvivingPartition: churn left no partition satisfying the
	// Theorem 1 preconditions even at δ′ = 0; the rebound engine holds
	// no parts and Diagnose calls report this (wrapped).
	ErrNoSurvivingPartition = core.ErrNoSurvivingPartition
)
