// Adversarial scenarios: what faulty testers can and cannot do to the
// diagnosis, and where the paper's own certificate needs care.
//
// The MM model lets a faulty tester answer arbitrarily. This example
// sweeps all adversary models over the extremal fault placements —
// including F = N(v), the configuration behind the diagnosability upper
// bound of Section 2 — and demonstrates gap G1: the paper's literal
// contributor certificate fails at its prescribed part size, while the
// scan certificate and enlarged parts both succeed.
//
// Run with: go run ./examples/adversarial
package main

import (
	"errors"
	"fmt"
	"log"

	cd "comparisondiag"
)

func main() {
	nw := cd.NewHypercube(9)
	g := nw.Graph()
	delta := nw.Diagnosability()
	fmt.Printf("network %s, δ = %d\n\n", nw.Name(), delta)

	center := int32(g.N() / 3)
	scenarios := []struct {
		name   string
		faults *cd.FaultSet
	}{
		{"neighbourhood F = N(v) (upper-bound extremal)", cd.NeighborhoodFaults(g, center, delta)},
		{"BFS cluster around a node", cd.ClusterFaults(g, center, delta)},
		{"no faults at all", cd.NewFaultSet(g.N())},
	}

	fmt.Println("-- every adversary, every placement: diagnosis stays exact --")
	for _, sc := range scenarios {
		for _, adversary := range cd.AllBehaviors(42) {
			s := cd.NewLazySyndrome(sc.faults, adversary)
			found, _, err := cd.Diagnose(nw, s)
			if err != nil {
				log.Fatalf("%s / %s: %v", sc.name, adversary.Name(), err)
			}
			if !found.Equal(sc.faults) {
				log.Fatalf("%s / %s: misdiagnosis", sc.name, adversary.Name())
			}
		}
		fmt.Printf("  %-46s exact under all %d adversaries\n", sc.name, len(cd.AllBehaviors(0)))
	}

	fmt.Println()
	fmt.Println("-- gap G1: the paper's contributor certificate at prescribed part size --")
	faults := cd.NeighborhoodFaults(g, center, delta)
	s := cd.NewLazySyndrome(faults, cd.Mimic{})

	_, _, err := cd.DiagnoseOpts(nw, s, cd.Options{Strategy: cd.StrategyPaper})
	if errors.Is(err, cd.ErrNoHealthyPart) {
		fmt.Println("  parts of size δ+1:  contributor certificate cannot fire (as DESIGN.md G1 predicts)")
	} else {
		log.Fatalf("expected ErrNoHealthyPart, got %v", err)
	}

	big, err := nw.Parts(2*delta+2, delta+1)
	if err != nil {
		log.Fatal(err)
	}
	found, _, err := cd.DiagnoseOpts(nw, s, cd.Options{Strategy: cd.StrategyPaper, Parts: big})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  parts of size 2δ+2: contributor certificate succeeds, exact=%v\n", found.Equal(faults))

	found, stats, err := cd.Diagnose(nw, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scan certificate:   exact=%v with %d look-ups (default path)\n",
		found.Equal(faults), stats.TotalLookups)
}
