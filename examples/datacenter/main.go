// Datacenter health sweep: periodic self-diagnosis of a 3D-torus
// cluster (an 8-ary 3-cube, 512 nodes — the interconnect shape of
// several production supercomputers).
//
// The operator story the paper's introduction motivates: machines fail
// silently, the interconnect is fine, and the cluster must find its own
// bad nodes from comparison tests without external probing. This
// example simulates a sequence of degradation events and repair cycles,
// diagnosing after each event and tracking the cost.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	cd "comparisondiag"
)

func main() {
	nw := cd.NewKAryNCube(8, 3) // 8x8x8 torus
	g := nw.Graph()
	delta := nw.Diagnosability()
	fmt.Printf("cluster %s: %d nodes in an 8x8x8 torus, degree %d, δ = %d\n\n",
		nw.Name(), g.N(), g.MaxDegree(), delta)

	rng := rand.New(rand.NewSource(7))
	live := cd.NewFaultSet(g.N()) // currently faulty nodes

	events := []struct {
		kind  string
		count int
	}{
		{"random component wear-out", 2},
		{"random component wear-out", 1},
		{"rack-local thermal event", 3}, // clustered failures
		{"repair sweep", 0},
		{"random component wear-out", 4},
	}

	for epoch, ev := range events {
		switch ev.kind {
		case "repair sweep":
			fmt.Printf("epoch %d: repair sweep — all %d known-bad nodes replaced\n", epoch, live.Count())
			live.Clear()
		case "rack-local thermal event":
			// Failures cluster around one node, the adversarial
			// placement for partition-based diagnosis.
			center := int32(rng.Intn(g.N()))
			cluster := cd.ClusterFaults(g, center, ev.count)
			live.Union(cluster)
			fmt.Printf("epoch %d: %s near node %d (+%d faults)\n", epoch, ev.kind, center, ev.count)
		default:
			for added := 0; added < ev.count; {
				u := rng.Intn(g.N())
				if !live.Contains(u) {
					live.Add(u)
					added++
				}
			}
			fmt.Printf("epoch %d: %s (+%d faults)\n", epoch, ev.kind, ev.count)
		}

		if live.Count() > delta {
			fmt.Printf("  !! %d faults exceed δ=%d — diagnosis guarantees void, escalate to humans\n",
				live.Count(), delta)
			continue
		}
		// The sweep: faulty testers answer randomly (firmware chaos).
		s := cd.NewLazySyndrome(live, cd.RandomBehavior{Seed: uint64(epoch)})
		found, stats, err := cd.DiagnoseOpts(nw, s, cd.Options{Workers: 4})
		if err != nil {
			log.Fatalf("  diagnosis failed: %v", err)
		}
		status := "EXACT"
		if !found.Equal(live) {
			status = "MISMATCH (bug!)"
		}
		fmt.Printf("  diagnosis: %v — %s; %d test results consulted (%.3f%% of table)\n",
			found, status, stats.TotalLookups,
			100*float64(stats.TotalLookups)/float64(cd.SyndromeTableSize(g)))
	}

	fmt.Println("\nfinal state:", live)
}
