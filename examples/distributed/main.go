// Distributed self-diagnosis: the paper's Conclusions propose that the
// system itself — not an external sequential observer — should compute
// the diagnosis, and report that a distributed Set_Builder beats a
// distributed extended-star algorithm. This example runs both protocols
// on a simulated 256-node hypercube machine and prints the cost ledger.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	cd "comparisondiag"
)

func main() {
	const n = 8
	nw := cd.NewHypercube(n)
	g := nw.Graph()
	fmt.Printf("machine: %s (%d nodes), up to δ = %d faulty processors\n\n",
		nw.Name(), g.N(), nw.Diagnosability())

	faults := cd.RandomFaults(g.N(), n, rand.New(rand.NewSource(11)))
	s := cd.NewLazySyndrome(faults, cd.Mimic{})
	fmt.Printf("hidden fault set: %v\n\n", faults)

	// The wave needs a certified-healthy initiator; in a deployment the
	// partition scan runs first (cheap), here we reuse the library's.
	_, stats, err := cd.Diagnose(nw, s)
	if err != nil {
		log.Fatal(err)
	}
	seed := stats.Seed

	waveF, waveStats, err := cd.RunWave(g, s, seed, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wave Set_Builder   rounds=%-4d messages=%-7d records=%-7d tests=%-6d one-port=%d  exact=%v\n",
		waveStats.Rounds, waveStats.Messages, waveStats.Records, waveStats.Tests,
		waveStats.OnePortTime, waveF.Equal(faults))

	stars := make([]*cd.ExtendedStar, g.N())
	for x := range stars {
		es, err := cd.HypercubeExtendedStar(n, int32(x))
		if err != nil {
			log.Fatal(err)
		}
		stars[x] = es
	}
	ctF, ctStats, err := cd.RunDistCT(g, s, stars, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dist. Chiang–Tan   rounds=%-4d messages=%-7d records=%-7d tests=%-6d one-port=%d  exact=%v\n",
		ctStats.Rounds, ctStats.Messages, ctStats.Records, ctStats.Tests,
		ctStats.OnePortTime, ctF.Equal(faults))

	fmt.Printf("\nwave advantage: %.1fx fewer messages, %.1fx fewer comparison tests\n",
		float64(ctStats.Messages)/float64(waveStats.Messages),
		float64(ctStats.Tests)/float64(waveStats.Tests))
	fmt.Println("(the demand-driven wave is the distributed face of the paper's Section 6 look-up economy)")
}
