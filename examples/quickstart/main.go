// Quickstart: diagnose faults in a 10-dimensional hypercube.
//
// A 1024-processor machine whose interconnect is Q_10 has up to δ = 10
// silently faulty processors. Every processor has compared the replies
// of each pair of its neighbours (the MM model); from those comparison
// results alone we recover exactly the faulty set.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cd "comparisondiag"
)

func main() {
	// The machine: a 10-dimensional hypercube.
	nw := cd.NewHypercube(10)
	g := nw.Graph()
	fmt.Printf("network %s: %d processors, %d links, diagnosability δ = %d\n",
		nw.Name(), g.N(), g.M(), nw.Diagnosability())

	// Some processors silently fail (we of course do not tell the
	// diagnosis algorithm which).
	rng := rand.New(rand.NewSource(2024))
	faults := cd.RandomFaults(g.N(), nw.Diagnosability(), rng)
	fmt.Printf("ground truth (hidden from the algorithm): %v\n", faults)

	// The system runs its comparison tests. Faulty testers answer
	// adversarially — here they mimic healthy answers exactly.
	s := cd.NewLazySyndrome(faults, cd.Mimic{})

	// Diagnose from the syndrome alone.
	found, stats, err := cd.Diagnose(nw, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosed faulty processors:               %v\n", found)
	fmt.Printf("exact match: %v\n", found.Equal(faults))
	fmt.Printf("cost: scanned %d candidate parts, consulted %d of %d possible test results (%.2f%%)\n",
		stats.PartsScanned, stats.TotalLookups, cd.SyndromeTableSize(g),
		100*float64(stats.TotalLookups)/float64(cd.SyndromeTableSize(g)))

	// A monitoring loop re-diagnoses the same machine as new syndromes
	// arrive. Bind an Engine once and serve them in batch: same answers,
	// same look-up counts, amortised setup and a worker pool.
	eng := cd.NewEngine(nw)
	syndromes := make([]cd.Syndrome, 8)
	for i := range syndromes {
		F := cd.RandomFaults(g.N(), nw.Diagnosability(), rng)
		syndromes[i] = cd.NewLazySyndrome(F, cd.Mimic{})
	}
	start := time.Now()
	exact := 0
	for _, r := range eng.DiagnoseBatch(syndromes, cd.BatchOptions{}) {
		if r.Err == nil {
			exact++
		}
	}
	fmt.Printf("engine batch: %d/%d diagnosed in %v (%.0f diagnoses/sec)\n",
		exact, len(syndromes), time.Since(start),
		float64(len(syndromes))/time.Since(start).Seconds())
}
