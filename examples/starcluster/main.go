// Star-graph cluster: diagnosis on permutation-based interconnects,
// including the boundary case the paper's Theorem 5 glosses over.
//
// The star graph S_7 (5040 nodes of degree 6) is the classical
// alternative to the hypercube; the (n,k)-star generalises it. This
// example diagnoses S_7 and S(7,3) with the partition algorithm, then
// shows the S(6,2) boundary case where Theorem 1's partition cannot
// exist (gap G3 in DESIGN.md) and the verification fallback takes over.
//
// Run with: go run ./examples/starcluster
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	cd "comparisondiag"
)

func diagnoseAndReport(nw cd.Network, faultCount int, seed int64) {
	g := nw.Graph()
	rng := rand.New(rand.NewSource(seed))
	faults := cd.RandomFaults(g.N(), faultCount, rng)
	s := cd.NewLazySyndrome(faults, cd.Mimic{})
	found, stats, err := cd.Diagnose(nw, s)
	if err != nil {
		log.Fatalf("%s: %v", nw.Name(), err)
	}
	fmt.Printf("%-8s N=%-5d δ=%d  injected=%d  exact=%v  parts=%d  lookups=%d/%d\n",
		nw.Name(), g.N(), nw.Diagnosability(), faults.Count(), found.Equal(faults),
		stats.PartsScanned, stats.TotalLookups, cd.SyndromeTableSize(g))
}

func main() {
	fmt.Println("-- permutation interconnects, partition diagnosis (Theorem 5) --")
	diagnoseAndReport(cd.NewStar(7), 6, 1)
	diagnoseAndReport(cd.NewStar(6), 5, 2)
	diagnoseAndReport(cd.NewNKStar(7, 3), 6, 3)
	diagnoseAndReport(cd.NewNKStar(8, 4), 7, 4)

	fmt.Println()
	fmt.Println("-- the S(6,2) boundary case (gap G3) --")
	nk := cd.NewNKStar(6, 2)
	g := nk.Graph()
	delta := nk.Diagnosability()
	fmt.Printf("S(6,2): N=%d but Theorem 1 needs more than δ(δ+1)=%d nodes in disjoint parts\n",
		g.N(), delta*(delta+1))

	rng := rand.New(rand.NewSource(5))
	faults := cd.RandomFaults(g.N(), delta, rng)
	s := cd.NewLazySyndrome(faults, cd.Mimic{})

	_, _, err := cd.Diagnose(nk, s)
	fmt.Printf("partition diagnosis: %v\n", err)
	if !errors.Is(err, cd.ErrNoPartition) {
		log.Fatal("expected the partition to be infeasible")
	}

	found, err := cd.DiagnoseWithVerification(g, delta, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification fallback: diagnosed %v, exact=%v\n", found, found.Equal(faults))
}
